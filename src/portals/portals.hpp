#pragma once
// Portals and (implicit) portal graphs (Definitions 7/8/12, Lemma 9).
//
// For an axis d, the d-portals of a region are the connected components of
// its d-parallel edges: maximal straight runs of amoebots. The portal graph
// has one vertex per portal, adjacent iff some edge joins them; for
// hole-free structures it is a tree (Lemma 9). The amoebots only have access
// to the *implicit* portal graph: all d-parallel edges, plus the unique
// "westernmost" connecting edge between each pair of adjacent portals,
// chosen by the local rule of Definition 12 (each amoebot decides from its
// own neighborhood which incident edges belong to the implicit tree).
//
// All definitions are stated w.l.o.g. for the x-axis; other axes reuse them
// through the canonical frame rotation.
#include <cstdint>
#include <vector>

#include "ett/euler_tour.hpp"
#include "geometry/frame.hpp"
#include "sim/comm.hpp"
#include "sim/region.hpp"

namespace aspf {

/// Plain value type: no Comm/Region pointers and no live pin state, so for
/// a fixed structure epoch it is a pure function of (region, axis) and the
/// cross-query solve cache (spf/solve_cache.hpp) stores whole-region
/// decompositions across queries. computePortals charges no model rounds,
/// so a cached decomposition needs no counter replay.
struct PortalDecomposition {
  Axis axis = Axis::X;
  Frame frame;  // maps this axis onto the x-axis

  /// portalOf[local] = dense portal id.
  std::vector<int> portalOf;

  /// members[p] = region-local ids, sorted west to east (canonical frame).
  std::vector<std::vector<int>> members;

  /// representative[p] = westernmost amoebot of the portal.
  std::vector<int> representative;

  struct CrossEdge {
    int peerPortal;
    int selfEnd;  // c_P1(P2): this portal's endpoint of the connecting edge
    int peerEnd;  // c_P2(P1)
  };
  /// adj[p] = connecting (rule) edges to adjacent portals; exactly one per
  /// adjacent pair (verified for hole-free structures).
  std::vector<std::vector<CrossEdge>> adj;

  /// The implicit portal tree over region-local amoebots: all axis-parallel
  /// edges plus the connecting edges.
  TreeAdj implicitTree;

  int portalCount() const { return static_cast<int>(members.size()); }

  /// Connector c_{p1}(p2), or -1 if the portals are not adjacent.
  int connector(int p1, int p2) const;

  /// BFS distances in the portal graph from `fromPortal`.
  std::vector<int> portalGraphDistances(int fromPortal) const;

  /// True iff the portal graph is acyclic (Lemma 9 for hole-free regions).
  bool portalGraphIsTree() const;
};

/// Computes the d-portal decomposition of a (connected) region.
PortalDecomposition computePortals(const Region& region, Axis axis);

/// Evaluates Definition 12's local rule for one amoebot: which of its
/// incident edges belong to the implicit portal tree of `axis`. Exposed for
/// cross-validation in tests; computePortals uses the same rule.
std::array<char, 6> implicitTreeEdgesLocalRule(const Region& region,
                                               int local, Axis axis);

}  // namespace aspf

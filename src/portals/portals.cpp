#include "portals/portals.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace aspf {

std::array<char, 6> implicitTreeEdgesLocalRule(const Region& region,
                                               int local, Axis axis) {
  const Frame frame = Frame::canonicalizeAxis(axis);
  // Directions in the *structure* corresponding to canonical E/W/NW/NE/SW/SE.
  const Dir E = frame.applyInverse(Dir::E), W = frame.applyInverse(Dir::W);
  const Dir NW = frame.applyInverse(Dir::NW), NE = frame.applyInverse(Dir::NE);
  const Dir SW = frame.applyInverse(Dir::SW), SE = frame.applyInverse(Dir::SE);

  auto has = [&](Dir d) { return region.neighbor(local, d) >= 0; };

  std::array<char, 6> out{};
  auto set = [&](Dir d, bool v) { out[static_cast<int>(d)] = v ? 1 : 0; };

  // Definition 12 (x-axis phrasing): E/W edges always belong to the tree;
  // the NW (SW) edge belongs iff the amoebot has no W neighbor (it is the
  // westernmost of its portal); the NE (SE) edge belongs iff the amoebot
  // has no NW (SW) neighbor (then the NE/SE neighbor is the westernmost
  // reachable one of the adjacent portal).
  set(E, has(E));
  set(W, has(W));
  set(NW, has(NW) && !has(W));
  set(SW, has(SW) && !has(W));
  set(NE, has(NE) && !has(NW));
  set(SE, has(SE) && !has(SW));
  return out;
}

int PortalDecomposition::connector(int p1, int p2) const {
  for (const CrossEdge& e : adj[p1])
    if (e.peerPortal == p2) return e.selfEnd;
  return -1;
}

std::vector<int> PortalDecomposition::portalGraphDistances(
    int fromPortal) const {
  std::vector<int> dist(portalCount(), -1);
  std::queue<int> q;
  dist[fromPortal] = 0;
  q.push(fromPortal);
  while (!q.empty()) {
    const int p = q.front();
    q.pop();
    for (const CrossEdge& e : adj[p]) {
      if (dist[e.peerPortal] == -1) {
        dist[e.peerPortal] = dist[p] + 1;
        q.push(e.peerPortal);
      }
    }
  }
  return dist;
}

bool PortalDecomposition::portalGraphIsTree() const {
  // Connected (the region is) + |edges| == |portals| - 1.
  std::size_t edgeEndpoints = 0;
  for (const auto& a : adj) edgeEndpoints += a.size();
  if (portalCount() == 0) return true;
  if (edgeEndpoints != 2 * static_cast<std::size_t>(portalCount() - 1))
    return false;
  const auto dist = portalGraphDistances(0);
  return std::none_of(dist.begin(), dist.end(),
                      [](int d) { return d < 0; });
}

PortalDecomposition computePortals(const Region& region, Axis axis) {
  PortalDecomposition out;
  out.axis = axis;
  out.frame = Frame::canonicalizeAxis(axis);
  const int n = region.size();
  out.portalOf.assign(n, -1);

  const Dir east = out.frame.applyInverse(Dir::E);
  const Dir west = opposite(east);

  // Portals: walk west to the run's start, then collect eastward.
  for (int u = 0; u < n; ++u) {
    if (out.portalOf[u] != -1) continue;
    int start = u;
    while (region.neighbor(start, west) >= 0)
      start = region.neighbor(start, west);
    const int pid = static_cast<int>(out.members.size());
    out.members.emplace_back();
    for (int v = start; v >= 0; v = region.neighbor(v, east)) {
      out.portalOf[v] = pid;
      out.members[pid].push_back(v);
    }
  }
  const int portals = out.portalCount();
  out.representative.resize(portals);
  for (int p = 0; p < portals; ++p)
    out.representative[p] = out.members[p].front();

  // Implicit tree from the local rule; cross edges (= non-axis tree edges)
  // also define the portal adjacency.
  out.implicitTree = TreeAdj::empty(n);
  out.adj.resize(portals);
  for (int u = 0; u < n; ++u) {
    const auto local = implicitTreeEdgesLocalRule(region, u, axis);
    for (int d = 0; d < 6; ++d) {
      if (!local[d]) continue;
      out.implicitTree.edge[u][d] = 1;
      const int v = region.neighbor(u, static_cast<Dir>(d));
      // Record each cross edge once, from the side that owns the rule hit;
      // also mirror the tree flag so TreeAdj stays symmetric.
      out.implicitTree.edge[v][static_cast<int>(
          opposite(static_cast<Dir>(d)))] = 1;
      if (axisOf(static_cast<Dir>(d)) == axis) continue;
      const int p1 = out.portalOf[u], p2 = out.portalOf[v];
      bool known = false;
      for (const auto& e : out.adj[p1]) known = known || e.peerPortal == p2;
      if (!known) {
        out.adj[p1].push_back({p2, u, v});
        out.adj[p2].push_back({p1, v, u});
      }
    }
  }
  return out;
}

}  // namespace aspf

#include "portals/portal_primitives.hpp"

#include <queue>
#include <stdexcept>

#include "primitives/election.hpp"
#include "util/bitstream.hpp"

namespace aspf {
namespace {

bool inSubset(std::span<const char> subset, int p) {
  return subset.empty() || subset[p] != 0;
}

}  // namespace

PortalRootPruneResult portalRootAndPrune(
    Comm& comm, const PortalDecomposition& decomp,
    std::span<const char> portalInSubset, int rootPortal,
    std::span<const char> portalInQ, bool computeAugmentation) {
  const Region& region = comm.region();
  const int portals = decomp.portalCount();
  PortalRootPruneResult result;
  result.portalInVQ.assign(portals, 0);
  result.parentPortal.assign(portals, -2);
  result.degQ.assign(portals, 0);
  result.inAug.assign(portals, 0);

  const PortalSubsetEtt run =
      runPortalEtt(comm, decomp, portalInSubset, rootPortal, portalInQ);
  result.qCount = run.qCount;
  result.rounds = run.rounds;

  int maxDeg = 0;
  for (int p = 0; p < portals; ++p) {
    if (!inSubset(portalInSubset, p)) continue;
    bool anyNonZero = false;
    int parent = -2;
    int deg = 0;
    for (const auto& e : decomp.adj[p]) {
      if (!inSubset(portalInSubset, e.peerPortal)) continue;
      const std::int64_t diff = run.crossDiff(region, e);
      if (diff != 0) {
        anyNonZero = true;
        ++deg;
      }
      if (diff > 0) parent = e.peerPortal;  // Corollary 18 via Lemma 32
    }
    const bool isRoot = p == rootPortal;
    const bool inVQ = isRoot ? result.qCount > 0 : anyNonZero;
    if (!inVQ) continue;
    result.portalInVQ[p] = 1;
    result.parentPortal[p] = isRoot ? -1 : parent;
    result.degQ[p] = deg;
    result.inAug[p] = deg >= 3 ? 1 : 0;
    maxDeg = std::max(maxDeg, deg);
  }

  // Dissemination: one portal-circuit round (V_Q membership beeped by the
  // connectors, Figure 4a) and one directed-edge-circuit round (parent
  // identification, Figure 4b).
  comm.chargeRounds(2);
  result.rounds += 2;

  if (computeAugmentation) {
    // Lemma 34: each portal counts its non-pruned neighbors with a prefix-
    // sum PASC along its member chain. Connectors for two portals via two
    // different directions split into direction-indexed parallel passes so
    // every pass uses 0/1 weights; all passes and portals run in parallel.
    const long pascRounds =
        2L * bitWidth(static_cast<std::uint64_t>(std::max(maxDeg, 1)));
    comm.chargeRounds(pascRounds + 1);  // + one portal-circuit beep (>= 3?)
    result.rounds += pascRounds + 1;
  }
  return result;
}

PortalElectionResult portalElect(Comm& comm,
                                 const PortalDecomposition& decomp,
                                 std::span<const char> portalInSubset,
                                 int rootPortal,
                                 std::span<const char> portalInQ) {
  const Region& region = comm.region();
  PortalElectionResult result;

  const TreeAdj tree =
      restrictedImplicitTree(region, decomp, portalInSubset);
  const EulerTour tour =
      buildEulerTour(region, tree, decomp.representative[rootPortal]);
  std::vector<char> inQHat(region.size(), 0);
  for (int p = 0; p < decomp.portalCount(); ++p) {
    if (portalInQ[p] && inSubset(portalInSubset, p))
      inQHat[decomp.representative[p]] = 1;
  }
  const ElectionResult elected = electFromQ(comm, tour, inQHat);
  result.electedPortal = decomp.portalOf[elected.elected];
  // The elected representative announces its portal on the portal circuit.
  comm.chargeRounds(1);
  result.rounds = elected.rounds + 1;
  return result;
}

PortalCentroidResult portalCentroids(Comm& comm,
                                     const PortalDecomposition& decomp,
                                     std::span<const char> portalInSubset,
                                     int rootPortal,
                                     std::span<const char> portalInQ) {
  const Region& region = comm.region();
  const int portals = decomp.portalCount();
  PortalCentroidResult result;
  result.isCentroid.assign(portals, 0);

  // Pass 1: parent relation (Lemma 33).
  const PortalRootPruneResult rooted = portalRootAndPrune(
      comm, decomp, portalInSubset, rootPortal, portalInQ);
  result.qCount = rooted.qCount;
  result.rounds = rooted.rounds;
  if (result.qCount == 0) return result;

  // Pass 2: ETT with |Q| broadcast; sizes compared at the connectors.
  const PortalSubsetEtt run = runPortalEtt(comm, decomp, portalInSubset,
                                           rootPortal, portalInQ, true);
  result.rounds += run.rounds;

  const auto q = static_cast<std::int64_t>(result.qCount);
  for (int p = 0; p < portals; ++p) {
    if (!portalInQ[p] || !inSubset(portalInSubset, p)) continue;
    bool centroid = true;
    for (const auto& e : decomp.adj[p]) {
      if (!inSubset(portalInSubset, e.peerPortal)) continue;
      const std::int64_t diff = run.crossDiff(region, e);
      const std::int64_t size =
          rooted.parentPortal[p] == e.peerPortal ? q - diff : -diff;
      if (2 * size > q) {
        centroid = false;
        break;
      }
    }
    result.isCentroid[p] = centroid ? 1 : 0;
  }
  // Veto beeps on the portal circuits (Figure 4a).
  comm.chargeRounds(1);
  result.rounds += 1;
  return result;
}

PortalDecompositionResult portalDecompose(const Region& region,
                                          const PortalDecomposition& decomp,
                                          int rootPortal,
                                          std::span<const char> portalInQPrime,
                                          int lanes) {
  const int portals = decomp.portalCount();
  PortalDecompositionResult result;
  result.depthOfPortal.assign(portals, -1);
  result.parentPortalInDT.assign(portals, -2);

  std::vector<char> removed(portals, 0);

  auto collectComponent = [&](int start, std::vector<char>& members) -> bool {
    members.assign(portals, 0);
    bool hasQ = false;
    std::queue<int> q;
    q.push(start);
    members[start] = 1;
    while (!q.empty()) {
      const int p = q.front();
      q.pop();
      hasQ = hasQ || portalInQPrime[p] != 0;
      for (const auto& e : decomp.adj[p]) {
        if (!removed[e.peerPortal] && !members[e.peerPortal]) {
          members[e.peerPortal] = 1;
          q.push(e.peerPortal);
        }
      }
    }
    return hasQ;
  };

  struct Subtree {
    std::vector<char> members;  // per-portal flags
    int rootPortal;
    int callingCentroid;
  };

  std::vector<Subtree> level;
  {
    Subtree whole;
    whole.rootPortal = rootPortal;
    whole.callingCentroid = -1;
    if (!collectComponent(rootPortal, whole.members))
      throw std::invalid_argument("portalDecompose: Q' is empty");
    level.push_back(std::move(whole));
  }

  int depth = 0;
  while (!level.empty()) {
    std::vector<Subtree> next;
    std::vector<long> roundsPerSubtree;
    for (const Subtree& z : level) {
      Comm comm(region, lanes);
      const PortalCentroidResult centroids = portalCentroids(
          comm, decomp, z.members, z.rootPortal, portalInQPrime);
      // Restrict Q to this subtree for the election.
      std::vector<char> inQz(portals, 0);
      for (int p = 0; p < portals; ++p)
        inQz[p] = centroids.isCentroid[p] && z.members[p];
      const PortalElectionResult elected =
          portalElect(comm, decomp, z.members, z.rootPortal, inQz);
      comm.chargeRounds(2);  // new-root + Q'-emptiness beeps per component
      roundsPerSubtree.push_back(comm.rounds());

      const int c = elected.electedPortal;
      result.depthOfPortal[c] = depth;
      result.parentPortalInDT[c] = z.callingCentroid;
      removed[c] = 1;
      for (const auto& e : decomp.adj[c]) {
        const int p = e.peerPortal;
        if (removed[p] || !z.members[p]) continue;
        Subtree child;
        child.rootPortal = p;
        child.callingCentroid = c;
        if (collectComponent(p, child.members)) {
          next.push_back(std::move(child));
        }
      }
    }
    result.rounds += parallelRounds(roundsPerSubtree);
    level = std::move(next);
    ++depth;
  }
  result.height = depth;
  return result;
}

}  // namespace aspf

#pragma once
// ETT on implicit portal graphs (Section 3.5, Lemma 32): per portal a
// representative (the westernmost amoebot) is elected; the ETT runs on the
// implicit portal tree with the representatives of Q marked. By Lemma 32
// the prefix-sum difference across the connecting edge c_P1(P2)--c_P2(P1)
// equals the difference across the portal-graph edge (P1,P2), so all
// portal-level primitives read their inputs at the connectors.
//
// Supports restriction to a portal subset (used by the decomposition
// primitive, whose recursions operate on subtrees of the portal graph).
#include <span>

#include "ett/ett_runner.hpp"
#include "portals/portals.hpp"

namespace aspf {

struct PortalSubsetEtt {
  EulerTour tour;        // over the (restricted) implicit portal tree
  EttResult ett;
  std::uint64_t qCount = 0;
  long rounds = 0;

  /// Portal-graph prefix-sum difference across a cross edge, evaluated at
  /// the connector (Lemma 32): diff(P1 -> P2) where e = adj[P1][..].
  std::int64_t crossDiff(const Region& region,
                         const PortalDecomposition::CrossEdge& e) const;
};

/// portalInSubset: per-portal membership of the restricted portal subtree
/// (empty span = all portals). rootPortal must belong to the subset;
/// portalInQ marks the Q portals (only those inside the subset count).
PortalSubsetEtt runPortalEtt(Comm& comm, const PortalDecomposition& decomp,
                             std::span<const char> portalInSubset,
                             int rootPortal, std::span<const char> portalInQ,
                             bool broadcastW = false);

/// Builds the implicit-portal-tree adjacency restricted to a portal subset.
TreeAdj restrictedImplicitTree(const Region& region,
                               const PortalDecomposition& decomp,
                               std::span<const char> portalInSubset);

}  // namespace aspf

#include "topology/hole_detection.hpp"

#include <algorithm>
#include <unordered_set>

#include "sim/circuit_engine.hpp"

namespace aspf {
namespace {

/// Pin addressing the given *geometric* side of the edge leaving in
/// direction d. Geometric side "ccw of the edge's canonical direction"
/// (the one among E/NE/NW) is lane 0; both endpoints agree on this without
/// communication.
Pin sidePin(Dir d, bool ccwSideOfD) {
  const bool canonical = static_cast<int>(d) < 3;
  const std::uint8_t lane =
      canonical ? (ccwSideOfD ? 0 : 1) : (ccwSideOfD ? 1 : 0);
  return Pin{d, lane};
}

}  // namespace

std::vector<std::vector<Pin>> boundaryPartitionSets(const Region& region,
                                                    int local) {
  std::array<bool, 6> occupied{};
  int deg = 0;
  for (int d = 0; d < 6; ++d) {
    occupied[d] = region.neighbor(local, static_cast<Dir>(d)) >= 0;
    deg += occupied[d] ? 1 : 0;
  }
  std::vector<std::vector<Pin>> sets;
  if (deg == 0 || deg == 6) return sets;  // isolated or interior
  // One partition set per maximal empty gap: it joins the ccw side of the
  // occupied edge at the gap's clockwise end with the cw side of the
  // occupied edge at its counterclockwise end.
  for (int d = 0; d < 6; ++d) {
    if (!occupied[d]) continue;
    const Dir start = static_cast<Dir>(d);
    if (occupied[static_cast<int>(ccw(start))]) continue;  // no gap here
    Dir end = ccw(start);
    while (!occupied[static_cast<int>(end)]) end = ccw(end);
    sets.push_back({sidePin(start, true), sidePin(end, false)});
  }
  return sets;
}

HoleDetectionResult detectHoles(const Region& region) {
  HoleDetectionResult result;
  const int n = region.size();
  if (n <= 1) {
    result.boundaryCircuits = 0;
    result.rounds = 2;
    return result;
  }

  Comm comm(region, 2);
  // Wire the boundary circuits; remember every amoebot's boundary sets.
  std::vector<std::vector<int>> setLabels(n);
  std::vector<std::vector<std::vector<Pin>>> setsOf(n);
  for (int u = 0; u < n; ++u) {
    setsOf[u] = boundaryPartitionSets(region, u);
    for (const auto& pins : setsOf[u])
      setLabels[u].push_back(comm.pins(u).join(pins));
  }

  // Leader: the westernmost amoebot (smallest cartesian x, then smallest
  // row) provably lies on the outer boundary, and its gap containing the
  // empty western cell faces the infinite region. It beeps on exactly that
  // partition set.
  int leader = 0;
  for (int u = 1; u < n; ++u) {
    const Coord a = region.coordOf(u), b = region.coordOf(leader);
    if (a.cartX() < b.cartX() ||
        (a.cartX() == b.cartX() && a.r < b.r))
      leader = u;
  }
  // Find the leader's gap containing direction W: the set whose clockwise
  // flank is the first occupied direction counterclockwise of W.
  {
    Dir flank = Dir::W;  // walk cw from W to the first occupied direction
    while (region.neighbor(leader, flank) < 0) flank = cw(flank);
    const Pin outerPin = sidePin(flank, true);
    comm.beepPin(leader, outerPin);
  }
  comm.deliver();

  // Any boundary set that did not hear the leader is on a hole boundary.
  for (int u = 0; u < n; ++u) {
    for (const int label : setLabels[u]) {
      if (!comm.received(u, label)) {
        result.holeFree = false;
        result.holeWitnesses.push_back(u);
        break;
      }
    }
  }
  // Alarm round on a global circuit.
  comm.chargeRounds(1);
  result.rounds = comm.rounds();

  // Simulation-side statistic: number of distinct boundary circuits.
  const CircuitInfo info = analyzeCircuits(comm);
  std::unordered_set<int> circuits;
  for (int u = 0; u < n; ++u) {
    for (const auto& pins : setsOf[u]) {
      circuits.insert(
          info.circuitAt(u, pinIndex(pins.front(), comm.lanes())));
    }
  }
  result.boundaryCircuits = static_cast<int>(circuits.size());
  return result;
}

}  // namespace aspf

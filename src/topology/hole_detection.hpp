#pragma once
// Hole detection — an extension beyond the paper (its conclusion leaves
// structures with holes as future work; all its algorithms *require*
// hole-freeness). This module lets an amoebot structure verify that
// precondition distributedly, in O(1) rounds given a leader on the outer
// boundary.
//
// Construction: every amoebot wires, for each maximal gap of empty
// neighbors between two occupied directions, its two flanking edge-side
// pins into one partition set. Edge-side pins are addressed by the
// *geometric* side of the edge (the side counterclockwise of the edge's
// canonical direction gets lane 0), which both endpoints compute locally,
// so the resulting circuits trace exactly the boundary components of the
// structure: one outer boundary plus one circuit per hole.
//
// Detection: the leader (here: the westernmost amoebot, which provably
// lies on the outer boundary) beeps on its boundary sets; a boundary set
// that does not receive the beep belongs to a hole boundary, and its owner
// raises an alarm on a global circuit. Hole-free iff no alarm.
#include <vector>

#include "sim/comm.hpp"

namespace aspf {

struct HoleDetectionResult {
  bool holeFree = true;
  /// Amoebots incident to a hole boundary (region-local ids).
  std::vector<int> holeWitnesses;
  /// Number of distinct boundary circuits (1 = hole-free). Simulation-side
  /// statistic; the protocol itself only learns holeFree.
  int boundaryCircuits = 0;
  long rounds = 0;
};

/// Requires a connected region. Uses 2 lanes.
HoleDetectionResult detectHoles(const Region& region);

/// The wiring rule, exposed for tests: partition sets this amoebot forms
/// for its boundary gaps, as lists of pins.
std::vector<std::vector<Pin>> boundaryPartitionSets(const Region& region,
                                                    int local);

}  // namespace aspf

#pragma once
// Rotational frames. Several algorithms in the paper are stated "w.l.o.g."
// for an x-portal with side B to the south (propagation algorithm, Sec 5.3)
// or for "westernmost" amoebots (Def 12). A Frame is one of the six
// chirality-preserving grid rotations; transforming coordinates into a
// canonical frame lets us implement those w.l.o.g. statements once.
#include "geometry/coord.hpp"

namespace aspf {

class Frame {
 public:
  /// Identity frame.
  constexpr Frame() = default;

  /// Rotation by `steps` * 60 degrees counterclockwise.
  static constexpr Frame rotationCcw(int steps) noexcept {
    Frame f;
    f.steps_ = ((steps % 6) + 6) % 6;
    return f;
  }

  /// Frame that maps directions of `axis` onto the x-axis (E/W), i.e. after
  /// apply(), the given axis is horizontal.
  static constexpr Frame canonicalizeAxis(Axis axis) noexcept {
    // Y (NE) -> rotate cw by 60 = ccw by 300; Z (NW) -> rotate cw by 120.
    switch (axis) {
      case Axis::X:
        return rotationCcw(0);
      case Axis::Y:
        return rotationCcw(5);
      case Axis::Z:
        return rotationCcw(4);
    }
    return {};
  }

  /// Rotate a coordinate about the origin.
  Coord apply(Coord c) const noexcept;
  Coord applyInverse(Coord c) const noexcept;

  constexpr Dir apply(Dir d) const noexcept { return ccw(d, steps_); }
  constexpr Dir applyInverse(Dir d) const noexcept {
    return ccw(d, 6 - steps_);
  }

  constexpr Axis apply(Axis a) const noexcept {
    return axisOf(apply(dirsOf(a)[0]));
  }

  constexpr int steps() const noexcept { return steps_; }

 private:
  int steps_ = 0;  // number of 60-degree ccw rotations
};

}  // namespace aspf

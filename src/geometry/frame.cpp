#include "geometry/frame.hpp"

namespace aspf {
namespace {

// One 60-degree ccw rotation in axial coordinates, determined by its action
// on the unit directions: E=(1,0) -> NE=(0,1) and NE=(0,1) -> NW=(-1,1),
// hence (q, r) -> (-r, q + r).
constexpr Coord rotOnce(Coord c) noexcept { return Coord{-c.r, c.q + c.r}; }

}  // namespace

Coord Frame::apply(Coord c) const noexcept {
  for (int i = 0; i < steps_; ++i) c = rotOnce(c);
  return c;
}

Coord Frame::applyInverse(Coord c) const noexcept {
  for (int i = 0; i < (6 - steps_) % 6; ++i) c = rotOnce(c);
  return c;
}

}  // namespace aspf

#include "geometry/coord.hpp"

#include <cassert>
#include <cmath>
#include <cstdlib>

namespace aspf {

const char* toString(Dir d) noexcept {
  switch (d) {
    case Dir::E:
      return "E";
    case Dir::NE:
      return "NE";
    case Dir::NW:
      return "NW";
    case Dir::W:
      return "W";
    case Dir::SW:
      return "SW";
    case Dir::SE:
      return "SE";
  }
  return "?";
}

const char* toString(Axis a) noexcept {
  switch (a) {
    case Axis::X:
      return "x";
    case Axis::Y:
      return "y";
    case Axis::Z:
      return "z";
  }
  return "?";
}

double Coord::cartY() const noexcept { return r * std::sqrt(3.0) / 2.0; }

std::string Coord::toString() const {
  return "(" + std::to_string(q) + "," + std::to_string(r) + ")";
}

int gridDistance(Coord a, Coord b) noexcept {
  // Axial-coordinate hex distance. With our offsets the third cube
  // coordinate is s = -q - r.
  const std::int64_t dq = static_cast<std::int64_t>(a.q) - b.q;
  const std::int64_t dr = static_cast<std::int64_t>(a.r) - b.r;
  const std::int64_t ds = -dq - dr;
  const std::int64_t d =
      (std::llabs(dq) + std::llabs(dr) + std::llabs(ds)) / 2;
  return static_cast<int>(d);
}

Dir dirBetween(Coord a, Coord b) noexcept {
  const Coord delta = b - a;
  for (Dir d : kAllDirs) {
    if (kDirOffset[static_cast<int>(d)] == delta) return d;
  }
  assert(false && "dirBetween: nodes are not neighbors");
  return Dir::E;
}

}  // namespace aspf

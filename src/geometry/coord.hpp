#pragma once
// Axial coordinates on the infinite regular triangular grid G_Delta and the
// six edge directions. The amoebot model's three "axes" (Section 2.3 of the
// paper, Figure 2e) are:
//   x-axis: E  / W   edges
//   y-axis: NE / SW  edges
//   z-axis: NW / SE  edges
// All amoebots share this compass (common orientation + chirality is assumed
// by the paper after the preprocessing of Feldmann et al.).
#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace aspf {

enum class Dir : std::uint8_t { E = 0, NE = 1, NW = 2, W = 3, SW = 4, SE = 5 };

inline constexpr int kNumDirs = 6;

inline constexpr std::array<Dir, 6> kAllDirs{Dir::E,  Dir::NE, Dir::NW,
                                             Dir::W, Dir::SW, Dir::SE};

constexpr Dir opposite(Dir d) noexcept {
  return static_cast<Dir>((static_cast<int>(d) + 3) % 6);
}

/// Next direction counterclockwise (chirality-consistent rotation).
constexpr Dir ccw(Dir d, int steps = 1) noexcept {
  return static_cast<Dir>((static_cast<int>(d) + steps) % 6);
}

/// Next direction clockwise.
constexpr Dir cw(Dir d, int steps = 1) noexcept {
  return static_cast<Dir>((static_cast<int>(d) + 6 * steps - steps) % 6);
}

enum class Axis : std::uint8_t { X = 0, Y = 1, Z = 2 };

inline constexpr std::array<Axis, 3> kAllAxes{Axis::X, Axis::Y, Axis::Z};

constexpr Axis axisOf(Dir d) noexcept {
  return static_cast<Axis>(static_cast<int>(d) % 3);
}

/// The two directions parallel to an axis: (positive, negative).
constexpr std::array<Dir, 2> dirsOf(Axis a) noexcept {
  const auto pos = static_cast<Dir>(static_cast<int>(a));
  return {pos, opposite(pos)};
}

const char* toString(Dir d) noexcept;
const char* toString(Axis a) noexcept;

/// A node of the triangular grid in axial coordinates.
/// Neighbor offsets: E=(1,0), NE=(0,1), NW=(-1,1), W=(-1,0), SW=(0,-1),
/// SE=(1,-1). Cartesian embedding: (q + r/2, r*sqrt(3)/2).
struct Coord {
  std::int32_t q = 0;
  std::int32_t r = 0;

  friend constexpr auto operator<=>(const Coord&, const Coord&) = default;

  constexpr Coord neighbor(Dir d) const noexcept;

  /// Cartesian embedding (for rendering and "westernmost" comparisons).
  constexpr double cartX() const noexcept { return q + r * 0.5; }
  double cartY() const noexcept;

  std::string toString() const;
};

constexpr std::array<Coord, 6> kDirOffset{{
    {1, 0},    // E
    {0, 1},    // NE
    {-1, 1},   // NW
    {-1, 0},   // W
    {0, -1},   // SW
    {1, -1},   // SE
}};

constexpr Coord Coord::neighbor(Dir d) const noexcept {
  const Coord o = kDirOffset[static_cast<int>(d)];
  return Coord{q + o.q, r + o.r};
}

constexpr Coord operator+(Coord a, Coord b) noexcept {
  return {a.q + b.q, a.r + b.r};
}
constexpr Coord operator-(Coord a, Coord b) noexcept {
  return {a.q - b.q, a.r - b.r};
}

/// Grid (hop) distance between two nodes of the triangular grid.
int gridDistance(Coord a, Coord b) noexcept;

/// Direction of the edge from a to b; a and b must be grid neighbors.
Dir dirBetween(Coord a, Coord b) noexcept;

struct CoordHash {
  std::size_t operator()(const Coord& c) const noexcept {
    const auto h = static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.q));
    const auto l = static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.r));
    std::uint64_t x = (h << 32) | l;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace aspf

#pragma once
// Streaming helpers used by the circuit protocols. All protocol-side
// comparisons of PASC outputs happen bit-by-bit, LSB first, with O(1) state,
// matching the constant-memory requirement of the amoebot model.
#include <cstdint>

namespace aspf {

/// Three-way comparison result of two bit streams, updated LSB first.
/// The later (more significant) differing bit dominates, so the comparator
/// simply overwrites its verdict whenever the current bits differ.
class StreamCompare {
 public:
  enum class Order : std::uint8_t { Equal, Less, Greater };

  /// Feed the next (more significant) pair of bits.
  constexpr void feed(bool a, bool b) noexcept {
    if (a != b) order_ = a ? Order::Greater : Order::Less;
  }

  constexpr Order order() const noexcept { return order_; }
  constexpr bool equal() const noexcept { return order_ == Order::Equal; }
  constexpr bool less() const noexcept { return order_ == Order::Less; }
  constexpr bool greater() const noexcept { return order_ == Order::Greater; }
  constexpr bool lessEqual() const noexcept { return order_ != Order::Greater; }

  constexpr void reset() noexcept { order_ = Order::Equal; }

 private:
  Order order_ = Order::Equal;
};

/// Streaming subtraction a - b, LSB first, with borrow; reports per-bit
/// difference and, once the streams end, whether the result is negative.
class StreamSubtract {
 public:
  /// Feed next pair of bits (LSB first); returns the difference bit.
  constexpr bool feed(bool a, bool b) noexcept {
    const int d = static_cast<int>(a) - static_cast<int>(b) - borrow_;
    borrow_ = d < 0 ? 1 : 0;
    return (d & 1) != 0;
  }

  /// After all bits (including enough zero padding) have been fed,
  /// a pending borrow means the true result is negative.
  constexpr bool negative() const noexcept { return borrow_ != 0; }

  constexpr void reset() noexcept { borrow_ = 0; }

 private:
  int borrow_ = 0;
};

/// Accumulates a bit stream (LSB first) into an integer. This is
/// *verification-side* bookkeeping: the protocols themselves never hold a
/// full value, but tests and the reference checker want one.
class BitAccumulator {
 public:
  constexpr void feed(bool bit) noexcept {
    if (bit) value_ |= (std::uint64_t{1} << index_);
    ++index_;
  }
  constexpr std::uint64_t value() const noexcept { return value_; }
  constexpr int bitsSeen() const noexcept { return index_; }
  constexpr void reset() noexcept {
    value_ = 0;
    index_ = 0;
  }

 private:
  std::uint64_t value_ = 0;
  int index_ = 0;
};

/// floor(log2(x)) for x >= 1.
int floorLog2(std::uint64_t x) noexcept;

/// Number of bits needed to represent x (0 -> 1).
int bitWidth(std::uint64_t x) noexcept;

}  // namespace aspf

#pragma once
// Minimal fixed-width ASCII table printer used by the bench harness to emit
// the paper-style result tables, plus a CSV sink for downstream plotting.
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace aspf {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void addRow(std::vector<std::string> row);

  /// Convenience: formats arithmetic values with operator<<.
  template <typename... Ts>
  void add(const Ts&... cells);

  void print(std::ostream& os) const;
  void printCsv(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

namespace detail {
std::string cellToString(const std::string& s);
std::string cellToString(const char* s);
std::string cellToString(double v);
std::string cellToString(long long v);
std::string cellToString(unsigned long long v);
template <typename T>
std::string cellToString(T v)
  requires std::is_integral_v<T>
{
  if constexpr (std::is_signed_v<T>)
    return cellToString(static_cast<long long>(v));
  else
    return cellToString(static_cast<unsigned long long>(v));
}
}  // namespace detail

template <typename... Ts>
void Table::add(const Ts&... cells) {
  addRow({detail::cellToString(cells)...});
}

}  // namespace aspf

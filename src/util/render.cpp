#include "util/render.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "geometry/coord.hpp"

namespace aspf {
namespace {

// Map a grid coordinate to a character cell: two columns per q step, one row
// per r step (top row = largest r), odd rows shifted by one column.
struct Canvas {
  std::int32_t qmin, qmax, rmin, rmax;
  std::vector<std::string> rows;

  explicit Canvas(const Region& region) {
    qmin = rmin = std::numeric_limits<std::int32_t>::max();
    qmax = rmax = std::numeric_limits<std::int32_t>::min();
    for (int i = 0; i < region.size(); ++i) {
      const Coord c = region.coordOf(i);
      qmin = std::min(qmin, c.q);
      qmax = std::max(qmax, c.q);
      rmin = std::min(rmin, c.r);
      rmax = std::max(rmax, c.r);
    }
    const int height = rmax - rmin + 1;
    const int width = 2 * (qmax - qmin + 1) + height + 2;
    rows.assign(height, std::string(width, ' '));
  }

  void put(Coord c, char glyph) {
    const int row = rmax - c.r;
    const int col = 2 * (c.q - qmin) + (c.r - rmin);
    if (row >= 0 && row < static_cast<int>(rows.size()) && col >= 0 &&
        col < static_cast<int>(rows[row].size()))
      rows[row][col] = glyph;
  }

  std::string str() const {
    std::string out;
    for (const auto& row : rows) {
      // Trim trailing spaces per row.
      auto end = row.find_last_not_of(' ');
      out += row.substr(0, end == std::string::npos ? 0 : end + 1);
      out += '\n';
    }
    return out;
  }
};

}  // namespace

std::string renderRegion(const Region& region,
                         const std::function<char(int)>& glyph) {
  if (region.size() == 0) return "";
  Canvas canvas(region);
  for (int i = 0; i < region.size(); ++i)
    canvas.put(region.coordOf(i), glyph(i));
  return canvas.str();
}

std::string renderStructure(const AmoebotStructure& s) {
  const Region whole = Region::whole(s);
  return renderRegion(whole, [](int) { return '*'; });
}

std::string renderForest(const AmoebotStructure& s,
                         const std::vector<int>& parent,
                         const std::vector<char>& isSource,
                         const std::vector<char>& isDest) {
  const Region whole = Region::whole(s);
  return renderRegion(whole, [&](int i) -> char {
    if (isSource[i]) return 'S';
    if (i < static_cast<int>(parent.size()) && parent[i] >= 0) {
      static constexpr char kArrow[6] = {'>', '/', '\\', '<', ',', '.'};
      const Dir d = dirBetween(s.coordOf(i), s.coordOf(parent[i]));
      if (isDest[i]) return 'D';
      return kArrow[static_cast<int>(d)];
    }
    if (isDest[i]) return 'd';
    return 'o';
  });
}

}  // namespace aspf

#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <type_traits>
#include <utility>

namespace aspf {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::addRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto rule = [&] {
    os << '+';
    for (auto w : width) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << s;
      for (std::size_t i = s.size(); i < width[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::printCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

namespace detail {

std::string cellToString(const std::string& s) { return s; }
std::string cellToString(const char* s) { return s; }

std::string cellToString(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

std::string cellToString(long long v) { return std::to_string(v); }
std::string cellToString(unsigned long long v) { return std::to_string(v); }

}  // namespace detail

}  // namespace aspf

#pragma once
// Small, fast, reproducible PRNG (xoshiro256**). We avoid <random> engines in
// library code so that seeded runs are bit-identical across platforms.
#include <cstdint>

namespace aspf {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial.
  bool chance(double p) noexcept { return uniform() < p; }

 private:
  std::uint64_t s_[4]{};
};

}  // namespace aspf

#pragma once
// ASCII rendering of amoebot structures on the triangular grid, used by the
// examples to reproduce the paper's illustrative figures (structure, portal
// graphs, shortest path trees). Each amoebot is drawn as one glyph; rows are
// offset by half a cell per grid row, mimicking the triangular lattice.
#include <functional>
#include <string>

#include "sim/region.hpp"

namespace aspf {

/// Returns a multi-line drawing; glyph(local) picks the character for each
/// amoebot of the region.
std::string renderRegion(const Region& region,
                         const std::function<char(int)>& glyph);

/// Renders the whole structure with '*' for every amoebot.
std::string renderStructure(const AmoebotStructure& s);

/// Renders a parent forest: sources 'S', destinations 'D', amoebots with a
/// parent get an arrow-ish glyph per direction, isolated amoebots '.'.
std::string renderForest(const AmoebotStructure& s,
                         const std::vector<int>& parent,
                         const std::vector<char>& isSource,
                         const std::vector<char>& isDest);

}  // namespace aspf

#include "util/rng.hpp"

namespace aspf {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// splitmix64, used only to expand the seed into the xoshiro state.
constexpr std::uint64_t splitmix(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix(sm);
  // All-zero state is invalid for xoshiro; splitmix of any seed avoids it,
  // but be defensive anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's unbiased bounded generation (rejection variant).
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace aspf

#include "util/bitstream.hpp"

#include <bit>

namespace aspf {

int floorLog2(std::uint64_t x) noexcept {
  return 63 - std::countl_zero(x | 1);
}

int bitWidth(std::uint64_t x) noexcept { return x == 0 ? 1 : floorLog2(x) + 1; }

}  // namespace aspf

// Energy distribution (the paper's introductory application [11, 30]):
// amoebots at external energy sources feed the rest of the structure. To
// minimize loss, energy flows along a shortest path forest: every amoebot
// receives its energy from the closest source over a shortest path. This
// example computes the forest, then simulates a simple per-round energy
// flow on it and reports how the load distributes over the sources.
#include <iostream>
#include <queue>

#include "core/amoebot_spf.hpp"
#include "util/render.hpp"
#include "util/table.hpp"

using namespace aspf;

int main() {
  // An elongated blob of programmable matter with charging docks on the
  // west edge and two more in the interior.
  const AmoebotStructure structure = shapes::parallelogram(40, 12);
  const Spf spf(structure);

  std::vector<int> docks;
  for (int r = 0; r < 12; r += 4) docks.push_back(structure.idOf({0, r}));
  docks.push_back(structure.idOf({20, 6}));
  docks.push_back(structure.idOf({39, 0}));

  // Every amoebot needs energy: D = X.
  std::vector<int> everyone(structure.size());
  for (int i = 0; i < structure.size(); ++i) everyone[i] = i;

  const SpfSolution forest = spf.solve(docks, everyone);
  std::cout << "Energy forest over n = " << structure.size()
            << " amoebots with " << docks.size() << " docks: computed in "
            << forest.rounds << " rounds, verified "
            << (spf.verify(forest, docks, everyone).ok ? "ok" : "BROKEN")
            << ".\n\n";

  // Per-dock statistics: how many amoebots each dock supplies, and the
  // total wire length (= sum of shortest-path hops = energy loss proxy).
  std::vector<int> rootOf(structure.size(), -1), depth(structure.size(), 0);
  std::vector<std::vector<int>> children(structure.size());
  for (int u = 0; u < structure.size(); ++u)
    if (forest.parent[u] >= 0) children[forest.parent[u]].push_back(u);
  std::queue<int> bfs;
  for (const int d : docks) {
    rootOf[d] = d;
    bfs.push(d);
  }
  while (!bfs.empty()) {
    const int u = bfs.front();
    bfs.pop();
    for (const int c : children[u]) {
      rootOf[c] = rootOf[u];
      depth[c] = depth[u] + 1;
      bfs.push(c);
    }
  }

  Table table({"dock", "amoebots supplied", "total hops", "max hops"});
  for (const int d : docks) {
    long supplied = 0, hops = 0;
    int maxHops = 0;
    for (int u = 0; u < structure.size(); ++u) {
      if (rootOf[u] == d) {
        ++supplied;
        hops += depth[u];
        maxHops = std::max(maxHops, depth[u]);
      }
    }
    table.add(structure.coordOf(d).toString(), supplied, hops, maxHops);
  }
  table.print(std::cout);

  // Simulate the flow: each round every amoebot passes one unit toward its
  // children; count rounds until the farthest amoebot is charged. With
  // pipelining this is exactly the forest height.
  int height = 0;
  for (int u = 0; u < structure.size(); ++u) height = std::max(height, depth[u]);
  std::cout << "\nPipelined charging completes after " << height
            << " rounds (forest height); a single-source tree would need "
            << structure.eccentricity(docks.front()) << "+.\n";

  std::vector<char> isSource(structure.size(), 0),
      isDest(structure.size(), 0);
  for (const int d : docks) isSource[d] = 1;
  std::cout << "\n" << renderForest(structure, forest.parent, isSource, isDest);
  return 0;
}

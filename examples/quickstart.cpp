// Quickstart: build an amoebot structure, solve SSSP / SPSP / (k,l)-SPF
// through the public facade, and render the resulting forests (compare
// Figures 1a and 5 of the paper).
#include <iostream>

#include "core/amoebot_spf.hpp"
#include "util/render.hpp"

using namespace aspf;

int main() {
  // A hexagon of radius 6 (n = 127 amoebots).
  const AmoebotStructure structure = shapes::hexagon(6);
  const Spf spf(structure);
  std::cout << "Amoebot structure (n = " << structure.size() << "):\n"
            << renderStructure(structure) << "\n";

  // --- SSSP from the western corner: O(log n) rounds.
  const int source = structure.idOf({-6, 0});
  const SpfSolution sssp = spf.sssp(source);
  std::cout << "SSSP from the western corner took " << sssp.rounds
            << " synchronous rounds (n = " << structure.size() << ").\n";

  // --- SPSP across the diameter: O(1) rounds.
  const int dest = structure.idOf({6, 0});
  const SpfSolution spsp = spf.spsp(source, dest);
  std::cout << "SPSP across the diameter took " << spsp.rounds
            << " rounds; path length "
            << [&] {
                 int len = 0, u = dest;
                 while (spsp.parent[u] >= 0) {
                   u = spsp.parent[u];
                   ++len;
                 }
                 return len;
               }()
            << ".\n";

  // --- (k,l)-SPF with three sources and four destinations.
  const std::vector<int> sources{structure.idOf({-6, 0}),
                                 structure.idOf({6, 0}),
                                 structure.idOf({0, 6})};
  const std::vector<int> dests{structure.idOf({0, -6}),
                               structure.idOf({3, 3}),
                               structure.idOf({-3, -3}),
                               structure.idOf({0, 0})};
  const SpfSolution forest = spf.solve(sources, dests);
  std::cout << "\n(3,4)-SPF took " << forest.rounds << " rounds; verified: "
            << (spf.verify(forest, sources, dests).ok ? "ok" : "BROKEN")
            << "\n";

  std::vector<char> isSource(structure.size(), 0), isDest(structure.size(), 0);
  for (const int s : sources) isSource[s] = 1;
  for (const int t : dests) isDest[t] = 1;
  std::cout << "Forest (S = sources, D = destinations, arrows point to "
               "parents, o = pruned):\n"
            << renderForest(structure, forest.parent, isSource, isDest);
  return 0;
}

// Portal explorer: renders the three (implicit) portal graphs of a
// structure (Figure 2 of the paper) and demonstrates the distance identity
// of Lemma 11 on a concrete pair of amoebots, plus the per-axis portal
// statistics that drive the shortest path tree algorithm.
#include <iostream>

#include "portals/portals.hpp"
#include "shapes/generators.hpp"
#include "util/render.hpp"
#include "util/table.hpp"

using namespace aspf;

int main() {
  const AmoebotStructure structure = shapes::staircase(4, 4);
  const Region region = Region::whole(structure);
  std::cout << "Structure (n = " << structure.size() << "):\n"
            << renderStructure(structure) << "\n";

  Table table({"axis", "portals", "is tree", "max portal size"});
  std::array<PortalDecomposition, 3> decomp{
      computePortals(region, Axis::X), computePortals(region, Axis::Y),
      computePortals(region, Axis::Z)};
  for (const Axis axis : kAllAxes) {
    const auto& d = decomp[static_cast<int>(axis)];
    std::size_t largest = 0;
    for (const auto& m : d.members) largest = std::max(largest, m.size());
    table.add(toString(axis), d.portalCount(),
              d.portalGraphIsTree() ? "yes" : "NO",
              static_cast<long long>(largest));

    // Render the portals: label each amoebot with its portal id mod 10,
    // mimicking the red runs of Figure 2.
    std::cout << toString(axis) << "-portals (digit = portal id mod 10):\n"
              << renderRegion(region,
                              [&](int u) {
                                return static_cast<char>(
                                    '0' + d.portalOf[u] % 10);
                              })
              << "\n";
  }
  table.print(std::cout);

  // Lemma 11 on a concrete pair: the two extreme corners.
  const int u = region.localOf(structure.idOf({0, 0}));
  int v = 0;
  for (int i = 0; i < region.size(); ++i) {
    if (region.coordOf(i).cartX() > region.coordOf(v).cartX()) v = i;
  }
  const int src[] = {u};
  const int duv = region.bfsDistancesLocal(src)[v];
  int sum = 0;
  for (const Axis axis : kAllAxes) {
    const auto& d = decomp[static_cast<int>(axis)];
    const int pd =
        d.portalGraphDistances(d.portalOf[u])[d.portalOf[v]];
    std::cout << "dist_" << toString(axis) << " = " << pd << "\n";
    sum += pd;
  }
  std::cout << "2 * dist(u,v) = " << 2 * duv << " = sum of portal distances "
            << sum << " (Lemma 11)\n";
  return 0;
}

// Hole inspector: demonstrates the boundary-circuit hole detection
// extension. The paper's algorithms require hole-free structures (their
// conclusion leaves holes as future work); this O(1)-round protocol lets a
// structure verify the precondition itself before running them.
#include <iostream>
#include <unordered_set>

#include "shapes/generators.hpp"
#include "topology/hole_detection.hpp"
#include "util/render.hpp"

using namespace aspf;

namespace {

AmoebotStructure punctured() {
  std::vector<Coord> coords;
  const std::unordered_set<Coord, CoordHash> holes{
      {3, 2}, {4, 2}, {9, 4}, {7, 1}};
  for (int r = 0; r < 7; ++r)
    for (int q = 0; q < 13; ++q)
      if (!holes.contains({q, r})) coords.push_back({q, r});
  return AmoebotStructure::fromCoords(std::move(coords));
}

void inspect(const char* name, const AmoebotStructure& s) {
  const Region region = Region::whole(s);
  const HoleDetectionResult res = detectHoles(region);
  std::cout << name << " (n = " << s.size() << "): "
            << (res.holeFree ? "hole-free" : "HAS HOLES") << ", "
            << res.boundaryCircuits << " boundary circuit(s), detected in "
            << res.rounds << " rounds\n";
  std::vector<char> witness(region.size(), 0);
  for (const int u : res.holeWitnesses) witness[u] = 1;
  std::cout << renderRegion(region,
                            [&](int u) { return witness[u] ? '!' : '*'; })
            << "\n";
}

}  // namespace

int main() {
  inspect("hexagon", shapes::hexagon(3));
  inspect("punctured slab ('!' = amoebot on a hole boundary)", punctured());
  inspect("random blob (hole-filled by construction)",
          shapes::randomBlob(200, 12));
  return 0;
}

// Shape reconfiguration routing (Kostitsyna, Peters, Speckmann [20], the
// paper's primary motivation): when transforming one amoebot structure
// into another, amoebots that must vacate their positions travel through
// the structure to free target positions. Routing them along a shortest
// path forest -- each mover to its *closest* target -- minimizes travel.
//
// This example marks the target positions as sources, the movers as
// destinations, computes the (k,l)-SPF, and reports per-mover routes and
// the total relocation cost, comparing against the worst naive assignment.
#include <algorithm>
#include <iostream>

#include "core/amoebot_spf.hpp"
#include "util/render.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace aspf;

int main() {
  // A random blob; movers on the east fringe must fill docking sites in
  // the west (a "shift the shape west" reconfiguration step).
  const AmoebotStructure structure = shapes::randomBlob(500, 7);
  const Spf spf(structure);
  const Region whole = Region::whole(structure);

  // Docking sites: the 6 westernmost amoebots; movers: 10 easternmost.
  std::vector<int> byX(structure.size());
  for (int i = 0; i < structure.size(); ++i) byX[i] = i;
  std::sort(byX.begin(), byX.end(), [&](int a, int b) {
    return structure.coordOf(a).cartX() < structure.coordOf(b).cartX();
  });
  const std::vector<int> targets(byX.begin(), byX.begin() + 6);
  const std::vector<int> movers(byX.end() - 10, byX.end());

  const SpfSolution forest = spf.solve(targets, movers);
  std::cout << "Reconfiguration forest (" << targets.size() << " targets, "
            << movers.size() << " movers, n = " << structure.size()
            << ") computed in " << forest.rounds << " rounds; verified "
            << (spf.verify(forest, targets, movers).ok ? "ok" : "BROKEN")
            << ".\n\n";

  // Route every mover along its tree path.
  Table table({"mover", "assigned target", "hops"});
  long totalHops = 0;
  for (const int mover : movers) {
    int u = mover, hops = 0;
    while (forest.parent[u] >= 0) {
      u = forest.parent[u];
      ++hops;
    }
    totalHops += hops;
    table.add(structure.coordOf(mover).toString(),
              structure.coordOf(u).toString(), hops);
  }
  table.print(std::cout);

  // Compare with the naive "everyone to target 0" routing.
  const int src0[] = {targets[0]};
  const auto distTo0 = structure.bfsDistances(src0);
  long naiveHops = 0;
  for (const int mover : movers) naiveHops += distTo0[mover];
  std::cout << "\nTotal travel: " << totalHops
            << " hops via the shortest path forest vs " << naiveHops
            << " hops when all movers head to one target ("
            << (100.0 * static_cast<double>(naiveHops - totalHops)) /
                   static_cast<double>(std::max<long>(naiveHops, 1))
            << "% saved).\n\n";

  std::vector<char> isSource(structure.size(), 0),
      isDest(structure.size(), 0);
  for (const int t : targets) isSource[t] = 1;
  for (const int m : movers) isDest[m] = 1;
  std::cout << renderForest(structure, forest.parent, isSource, isDest);
  (void)whole;
  return 0;
}
